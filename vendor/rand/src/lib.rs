//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the handful of `rand` 0.8 APIs the workspace actually uses
//! are reimplemented here behind the same names: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer/float
//! ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! high-quality, and fast. It is **not** the same stream as upstream
//! `StdRng` (ChaCha12); everything in this workspace treats the RNG as an
//! opaque seeded source, so only determinism per seed matters.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Element types that support uniform range sampling.
///
/// `SampleRange` is implemented **once** for `Range<T>` / `RangeInclusive<T>`
/// over any `T: SampleUniform` (mirroring upstream `rand`): the single
/// blanket impl ties the trait's type parameter to the range's element type,
/// which is what lets `rng.gen_range(0.2..0.8)` infer `f64` from a bare
/// float literal.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a double in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self {
        if inclusive {
            // 53-bit draw mapped to [0, 1].
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            lo + (hi - lo) * u
        } else {
            let v = lo + (hi - lo) * unit_f64(rng.next_u64());
            // Floating-point rounding can land exactly on `hi`; nudge back in.
            if v >= hi {
                hi - (hi - lo) * f64::EPSILON
            } else {
                v
            }
        }
    }
}

impl SampleUniform for f32 {
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self {
        let u = unit_f64(rng.next_u64()) as f32;
        let v = lo + (hi - lo) * u;
        if !inclusive && v >= hi {
            f32::from_bits(hi.to_bits() - 1)
        } else {
            v
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut G,
            ) -> Self {
                let span = hi.wrapping_sub(lo) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                } else {
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    /// The workspace's standard seeded generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
            let j = rng.gen_range(3..=5u64);
            assert!((3..=5).contains(&j));
        }
    }

    #[test]
    fn unit_interval_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(draws.iter().any(|&x| x < 0.1));
        assert!(draws.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn gen_bool_respects_p() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads {heads}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(takes_generic(&mut rng) < 10);
    }
}
