//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x this workspace's test suites use:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], [`prelude::ProptestConfig`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test seed (test name + case index), and there is **no shrinking** —
//! a failing case panics with the normal assertion message, and reruns
//! reproduce it exactly because sampling is deterministic.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// A generator of test values.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in samples values directly.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then uses it to build and sample a second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Clone,
    std::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Clone,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategy producing exactly its value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A vector of strategies generates element-wise (upstream behaviour);
/// this is what lets per-mode strategies compose into a shape strategy.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Uniform choice among boxed strategies — the expansion of
/// [`prop_oneof!`]. Upstream supports weights; this stand-in picks each
/// arm with equal probability.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Chooses uniformly among the listed strategies (all producing the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($s) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeBounds, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
        let bounds = size.into();
        VecStrategy { elem, bounds }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        bounds: SizeBounds,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.bounds.min == self.bounds.max {
                self.bounds.min
            } else {
                rng.gen_range(self.bounds.min..=self.bounds.max)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Inclusive length bounds for collection strategies.
pub struct SizeBounds {
    min: usize,
    max: usize,
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> Self {
        SizeBounds { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeBounds {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeBounds {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeBounds {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeBounds {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case RNG: FNV-1a over the test name, mixed with the
/// case index. Used by the [`proptest!`] macro expansion.
#[doc(hidden)]
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// The usual glob import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `config.cases` sampled
/// inputs with a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_rng(stringify!($name), case);
                let ($($pat,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..=5)
            .prop_flat_map(|n| crate::collection::vec(-1.0f64..1.0, n).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_len_matches_flat_mapped_dim((n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn ranges_and_any_compose(
            k in 0usize..16,
            seed in any::<u64>(),
            flag in any::<bool>(),
        ) {
            prop_assert!(k < 16);
            let _ = (seed, flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn just_vec_and_oneof_compose(
            (fixed, picks) in (1usize..=4).prop_flat_map(|n| {
                let per_item: Vec<_> = (0..n)
                    .map(|i| prop_oneof![Just(i), 0usize..i + 1, Just(99usize)])
                    .collect();
                (Just(n), per_item)
            })
        ) {
            prop_assert_eq!(picks.len(), fixed);
            for (i, &p) in picks.iter().enumerate() {
                prop_assert!(p <= i || p == 99usize, "arm values only");
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        let s = crate::collection::vec(0usize..100, 2..=9);
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }
}
