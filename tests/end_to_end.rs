//! Cross-crate integration: the full pipeline from dataset generation
//! through decomposition, on every dataset analog.

use dtucker::{DTucker, DTuckerConfig};
use dtucker_baselines::{hooi, HooiConfig};
use dtucker_data::{generate, Dataset, Scale};

/// D-Tucker matches Tucker-ALS accuracy (within a small factor) on every
/// dataset analog at CI scale — the paper's central accuracy claim.
#[test]
fn dtucker_matches_als_accuracy_on_all_datasets() {
    for ds in Dataset::ALL {
        let x = generate(ds, Scale::Ci, 42).expect("generation");
        let n = x.order();
        let j = 4usize.min(*x.shape().iter().min().unwrap());

        let dt = DTucker::new(DTuckerConfig::uniform(j, n).with_seed(1))
            .decompose(&x)
            .expect("dtucker");
        let dt_err = dt.decomposition.relative_error_sq(&x).expect("error");

        let mut hc = HooiConfig::new(&vec![j; n]);
        hc.seed = 1;
        let als = hooi(&x, &hc).expect("hooi");
        let als_err = als.decomposition.relative_error_sq(&x).expect("error");

        assert!(
            dt_err <= als_err * 1.25 + 5e-3,
            "{}: D-Tucker {dt_err} vs ALS {als_err}",
            ds.name()
        );
        assert!(dt.decomposition.factors_orthonormal(1e-6), "{}", ds.name());
    }
}

/// Factor shapes and core shape always match the requested configuration,
/// independent of the internal mode reordering.
#[test]
fn output_shapes_respect_original_mode_order() {
    for ds in Dataset::ALL {
        let x = generate(ds, Scale::Ci, 7).expect("generation");
        let ranks: Vec<usize> = x
            .shape()
            .iter()
            .enumerate()
            .map(|(i, &d)| (2 + i).min(d))
            .collect();
        let mut cfg = DTuckerConfig::new(&ranks);
        cfg.seed = 2;
        let out = DTucker::new(cfg).decompose(&x).expect("dtucker");
        assert_eq!(out.decomposition.ranks(), ranks.as_slice(), "{}", ds.name());
        for (n, f) in out.decomposition.factors.iter().enumerate() {
            assert_eq!(
                f.shape(),
                (x.shape()[n], ranks[n]),
                "{} mode {n}",
                ds.name()
            );
        }
    }
}

/// The cheap projection error estimate agrees with the exact reconstruction
/// error when compression is tight.
#[test]
fn error_estimate_tracks_exact_error() {
    let x = generate(Dataset::Boats, Scale::Ci, 3).expect("generation");
    let mut cfg = DTuckerConfig::uniform(5, 3);
    cfg.slice_rank = Some(20); // generous slice rank → near-lossless slices
    cfg.seed = 3;
    let out = DTucker::new(cfg).decompose(&x).expect("dtucker");
    let exact = out.decomposition.relative_error_sq(&x).expect("error");
    let estimate = out.decomposition.projection_error_sq(x.fro_norm_sq());
    assert!(
        (exact - estimate).abs() < 0.1 * exact + 1e-4,
        "exact {exact} vs estimate {estimate}"
    );
}

/// Determinism: identical seeds produce bit-identical factor matrices.
#[test]
fn runs_are_deterministic() {
    let x = generate(Dataset::Traffic, Scale::Ci, 5).expect("generation");
    let cfg = DTuckerConfig::uniform(4, 3).with_seed(11);
    let a = DTucker::new(cfg.clone()).decompose(&x).expect("run a");
    let b = DTucker::new(cfg).decompose(&x).expect("run b");
    for (fa, fb) in a
        .decomposition
        .factors
        .iter()
        .zip(b.decomposition.factors.iter())
    {
        assert_eq!(fa, fb);
    }
    assert_eq!(a.decomposition.core, b.decomposition.core);
}

/// Thread count must not change results (per-slice derived seeds).
#[test]
fn threading_does_not_change_results() {
    let x = generate(Dataset::Hsi, Scale::Ci, 6).expect("generation");
    let serial = DTucker::new(DTuckerConfig::uniform(4, 3).with_seed(4))
        .decompose(&x)
        .expect("serial");
    let threaded = DTucker::new(DTuckerConfig::uniform(4, 3).with_seed(4).with_threads(2))
        .decompose(&x)
        .expect("threaded");
    for (fa, fb) in serial
        .decomposition
        .factors
        .iter()
        .zip(threaded.decomposition.factors.iter())
    {
        assert!(fa.approx_eq(fb, 1e-12));
    }
}
