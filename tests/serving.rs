//! Subprocess tests for the serving surface of `dtucker-cli`: `list`
//! (stdout must stay a clean JSON document while warnings go to stderr),
//! `query --format json` (shared encoder with the server), and a full
//! `serve` session over TCP ending in a graceful drain.

use dtucker::serve::json::render_result;
use dtucker::{QueryEngine, Range, TuckerDecomp};
use dtucker_tensor::random::random_tucker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

const CLI: &str = env!("CARGO_BIN_EXE_dtucker-cli");

fn decomp(seed: u64) -> TuckerDecomp {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_tucker(&[7, 6, 5], &[2, 2, 3], &mut rng).unwrap();
    TuckerDecomp {
        core: m.core,
        factors: m.factors,
    }
}

/// A fresh store directory holding one valid decomposition named `demo`
/// and one junk `.dts` file that every scan must skip with a warning.
fn store_with_junk(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtucker_serving_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dtucker::store::write_decomposition(dir.join("demo.dts"), &decomp(21)).unwrap();
    std::fs::write(dir.join("junk.dts"), b"not a dtucker artifact at all").unwrap();
    dir
}

#[test]
fn list_keeps_stdout_clean_json_despite_junk_files() {
    let dir = store_with_junk("list");
    let out = Command::new(CLI)
        .args(["list", "--store", dir.to_str().unwrap(), "--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    // stdout is exactly one JSON document — the junk file's warning must
    // not corrupt it.
    assert_eq!(
        stdout.trim(),
        "{\"artifacts\":[{\"name\":\"demo\",\"kind\":\"tucker\"}]}"
    );
    assert!(stderr.contains("warning: skipping"), "{stderr}");
    assert!(stderr.contains("junk.dts"), "{stderr}");

    // Text mode warns on stderr too.
    let out = Command::new(CLI)
        .args(["list", "--store", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("demo  tucker"), "{stdout}");
    assert!(!stdout.contains("warning"), "{stdout}");
    assert!(String::from_utf8(out.stderr).unwrap().contains("junk.dts"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_json_shares_the_server_encoding() {
    let dir = store_with_junk("qjson");
    let artifact = dir.join("demo.dts");
    let mut engine = QueryEngine::open(&artifact).unwrap();

    // Element query: stdout is {"results":[<render_result bytes>]}.
    let spec = "1,2,3";
    let r = Range::parse(spec, &[7, 6, 5]).unwrap();
    let want = render_result(spec, &engine.query(&r).unwrap());
    let out = Command::new(CLI)
        .args([
            "query",
            "--decomp",
            artifact.to_str().unwrap(),
            "--at",
            spec,
            "--format",
            "json",
            "--verify",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim(), format!("{{\"results\":[{want}]}}"));
    // --verify chatter lands on stderr, not in the document.
    assert!(String::from_utf8(out.stderr).unwrap().contains("verify"));

    // Aggregates use the shared aggregate shape.
    let out = Command::new(CLI)
        .args([
            "query",
            "--decomp",
            artifact.to_str().unwrap(),
            "--range",
            ":,:,:",
            "--agg",
            "sum",
            "--format",
            "json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let sum = engine
        .sum(&Range::parse(":,:,:", &[7, 6, 5]).unwrap())
        .unwrap();
    assert_eq!(
        stdout.trim(),
        format!("{{\"results\":[{{\"spec\":\":,:,:\",\"agg\":\"sum\",\"value\":{sum}}}]}}")
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_session_end_to_end() {
    let dir = store_with_junk("serve");
    let mut child = Command::new(CLI)
        .args([
            "serve",
            "--store",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // Parse the bound address off the child's stdout.
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut addr = None;
    let mut banner = String::new();
    for _ in 0..10 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        banner.push_str(&line);
        if let Some(rest) = line.trim().strip_prefix("listening on http://") {
            addr = Some(rest.to_string());
            break;
        }
    }
    let addr = addr.unwrap_or_else(|| panic!("no listening line in:\n{banner}"));
    assert!(banner.contains("serving     demo"), "{banner}");

    let roundtrip = |raw: String| -> String {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        String::from_utf8(out).unwrap()
    };

    // Element answer matches the direct engine through the shared encoder.
    let mut engine = QueryEngine::open(dir.join("demo.dts")).unwrap();
    let r = Range::parse("2,3,4", &[7, 6, 5]).unwrap();
    let want = render_result("2,3,4", &engine.query(&r).unwrap());
    let resp = roundtrip("GET /q/demo?at=2,3,4 HTTP/1.1\r\nConnection: close\r\n\r\n".into());
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.ends_with(&want), "{resp}");

    // Batch and metrics answer too.
    let resp = roundtrip(
        "POST /q/demo/batch HTTP/1.1\r\nConnection: close\r\nContent-Length: 12\r\n\r\n2,3,4\n0,0,0\n"
            .into(),
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("\"results\":["), "{resp}");
    let resp = roundtrip("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n".into());
    assert!(resp.contains("dtucker_requests_total"), "{resp}");

    // Graceful drain: the process exits cleanly after /shutdown.
    let resp = roundtrip("POST /shutdown HTTP/1.1\r\nConnection: close\r\n\r\n".into());
    assert!(resp.contains("{\"draining\":true}"), "{resp}");
    let status = child.wait().unwrap();
    assert!(status.success());
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("drained"), "{rest}");
    std::fs::remove_dir_all(&dir).ok();
}
