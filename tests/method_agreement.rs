//! Cross-method invariants: on a strongly low-rank tensor every method must
//! land near the same answer, and the known accuracy orderings must hold.

use dtucker::{DTucker, DTuckerConfig};
use dtucker_baselines::{
    hosvd, mach, rtd, st_hosvd, tucker_ts, tucker_ttmts, MachConfig, RtdConfig, TuckerTsConfig,
};
use dtucker_tensor::random::low_rank_plus_noise;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn input() -> dtucker::DenseTensor {
    let mut rng = StdRng::seed_from_u64(100);
    low_rank_plus_noise(&[30, 26, 18], &[3, 3, 3], 0.05, &mut rng).expect("generation")
}

/// Optimal relative squared error for this noise level.
const NOISE: f64 = 0.05;

fn optimal_err() -> f64 {
    NOISE * NOISE / (1.0 + NOISE * NOISE)
}

#[test]
fn exact_methods_reach_near_optimal_error() {
    let x = input();
    let opt = optimal_err();

    let dt = DTucker::new(DTuckerConfig::uniform(3, 3).with_seed(1))
        .decompose(&x)
        .unwrap();
    let dt_err = dt.decomposition.relative_error_sq(&x).unwrap();
    assert!(dt_err < 1.3 * opt + 1e-4, "dtucker {dt_err} vs opt {opt}");

    let h = hosvd(&x, &[3, 3, 3])
        .unwrap()
        .decomposition
        .relative_error_sq(&x)
        .unwrap();
    assert!(h < 2.0 * opt + 1e-4, "hosvd {h}");

    let st = st_hosvd(&x, &[3, 3, 3])
        .unwrap()
        .decomposition
        .relative_error_sq(&x)
        .unwrap();
    assert!(st < 2.0 * opt + 1e-4, "st-hosvd {st}");

    let mut rc = RtdConfig::new(&[3, 3, 3]);
    rc.seed = 2;
    let r = rtd(&x, &rc)
        .unwrap()
        .decomposition
        .relative_error_sq(&x)
        .unwrap();
    assert!(r < 2.5 * opt + 1e-3, "rtd {r}");
}

#[test]
fn sketched_methods_are_approximate_but_sane() {
    let x = input();
    let opt = optimal_err();
    let mut cfg = TuckerTsConfig::new(&[3, 3, 3]);
    cfg.seed = 3;
    let ts = tucker_ts(&x, &cfg)
        .unwrap()
        .decomposition
        .relative_error_sq(&x)
        .unwrap();
    let ttmts = tucker_ttmts(&x, &cfg)
        .unwrap()
        .decomposition
        .relative_error_sq(&x)
        .unwrap();
    // Sketching costs accuracy but not sanity: within 10× of optimal.
    assert!(ts < 10.0 * opt + 0.01, "tucker-ts {ts}");
    assert!(ttmts < 10.0 * opt + 0.01, "tucker-ttmts {ttmts}");
}

#[test]
fn mach_accuracy_improves_with_sampling_rate() {
    let x = input();
    let mut errs = Vec::new();
    for rate in [0.2, 0.5, 1.0] {
        let mut cfg = MachConfig::new(&[3, 3, 3]);
        cfg.sample_rate = rate;
        cfg.seed = 4;
        let e = mach(&x, &cfg)
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        errs.push(e);
    }
    // Full sampling must beat heavy subsampling (monotone up to noise).
    assert!(errs[2] <= errs[0] + 1e-6, "errors {errs:?}");
    assert!(
        errs[2] < 1.5 * optimal_err() + 1e-3,
        "full-rate MACH {}",
        errs[2]
    );
}

#[test]
fn dtucker_beats_competitors_in_preprocessed_size() {
    let x = input();
    let cfg = DTuckerConfig::uniform(3, 3).with_seed(5);
    let sliced = dtucker::SlicedTensor::compress(&x, &cfg).unwrap();

    let mut mc = MachConfig::new(&[3, 3, 3]);
    mc.seed = 5;
    let sample = dtucker_baselines::mach::mach_sample(&x, &mc).unwrap();

    let mut tc = TuckerTsConfig::new(&[3, 3, 3]);
    tc.seed = 5;
    let sketched = dtucker_baselines::tucker_ts::preprocess(&x, &tc).unwrap();

    let dense = x.numel() * 8;
    assert!(sliced.memory_bytes() < dense);
    // At this (small) scale MACH's 10% sample is also small; the invariant
    // that must always hold is that D-Tucker compresses the raw tensor.
    assert!(sliced.memory_bytes() < sketched.memory_bytes() * 2);
    assert!(sample.memory_bytes() > 0);
}

#[test]
fn higher_rank_never_hurts_error() {
    let x = input();
    let mut prev = f64::INFINITY;
    for j in [2usize, 3, 5, 8] {
        let out = DTucker::new(DTuckerConfig::uniform(j, 3).with_seed(6))
            .decompose(&x)
            .unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        assert!(err <= prev + 1e-6, "rank {j}: {err} vs previous {prev}");
        prev = err;
    }
}
