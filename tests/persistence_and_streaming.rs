//! Integration: binary persistence round-trips through decomposition, and
//! the streaming extension tracks batch quality over many appends.

use dtucker::{DTucker, DTuckerConfig, DTuckerStream};
use dtucker_data::{generate, Dataset, Scale};
use dtucker_tensor::io;

#[test]
fn saved_tensor_decomposes_identically_after_reload() {
    let x = generate(Dataset::AirQuality, Scale::Ci, 9).expect("generation");
    let dir = std::env::temp_dir().join("dtucker_integration");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("aq.dten");
    io::save(&x, &path).expect("save");
    let reloaded = io::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, x);

    let cfg = DTuckerConfig::uniform(4, 3).with_seed(1);
    let a = DTucker::new(cfg.clone()).decompose(&x).expect("run a");
    let b = DTucker::new(cfg).decompose(&reloaded).expect("run b");
    assert_eq!(a.decomposition.core, b.decomposition.core);
}

#[test]
fn streaming_tracks_batch_on_real_analog() {
    let x = generate(Dataset::Traffic, Scale::Ci, 10).expect("generation");
    let t = *x.shape().last().unwrap();
    let cfg = DTuckerConfig::uniform(4, 3).with_seed(2);

    let mut stream = DTuckerStream::new(&x.subtensor_last(0, t / 2).expect("head"), cfg.clone())
        .expect("stream init");
    let step = (t / 2 / 4).max(1);
    let mut pos = t / 2;
    while pos < t {
        let next = (pos + step).min(t);
        stream
            .append(&x.subtensor_last(pos, next).expect("block"))
            .expect("append");
        pos = next;
    }
    assert_eq!(stream.timesteps(), t);

    let stream_err = stream
        .decomposition()
        .expect("decomposition")
        .relative_error_sq(&x)
        .expect("error");
    let batch = DTucker::new(cfg).decompose(&x).expect("batch");
    let batch_err = batch.decomposition.relative_error_sq(&x).expect("error");
    assert!(
        stream_err <= batch_err * 1.5 + 5e-3,
        "stream {stream_err} vs batch {batch_err}"
    );
}

#[test]
fn sliced_tensor_survives_reuse_across_ranks() {
    let x = generate(Dataset::Boats, Scale::Ci, 11).expect("generation");
    let mut cfg = DTuckerConfig::uniform(6, 3).with_seed(3);
    cfg.slice_rank = Some(14);
    let sliced = dtucker::SlicedTensor::compress(&x, &cfg).expect("compress");

    // One compression serves several ranks; error must be monotone in rank.
    let mut prev = f64::INFINITY;
    for j in [2usize, 4, 6] {
        let mut c = DTuckerConfig::uniform(j, 3).with_seed(3);
        c.slice_rank = Some(14);
        let out = DTucker::new(c)
            .decompose_sliced(&sliced)
            .expect("decompose");
        let err = out.decomposition.relative_error_sq(&x).expect("error");
        assert!(err <= prev + 1e-6, "rank {j}: {err} vs {prev}");
        prev = err;
    }
}
