//! Video background/foreground separation with D-Tucker — the workload the
//! Boats dataset motivates.
//!
//! A rank-(J,J,J) Tucker model of a surveillance video captures the static
//! background plus dominant motion; per-frame residual energy then flags
//! frames with unusual foreground activity. The example also times D-Tucker
//! against plain Tucker-ALS on the same video.
//!
//! Run with: `cargo run --release --example video_background`

use dtucker::{DTucker, DTuckerConfig};
use dtucker_baselines::{hooi, HooiConfig};
use dtucker_data::video::{video, VideoConfig};
use std::time::Instant;

fn main() {
    // A 96×80 video with 150 frames and 3 drifting objects.
    let mut cfg = VideoConfig::new(96, 80, 150);
    cfg.blobs = 3;
    let x = video(&cfg, 7).expect("video generation");
    println!(
        "video: {:?} ({:.1} MB)",
        x.shape(),
        x.numel() as f64 * 8.0 / 1e6
    );

    // D-Tucker at rank (8, 8, 8).
    let t0 = Instant::now();
    let out = DTucker::new(DTuckerConfig::uniform(8, 3).with_seed(1))
        .decompose(&x)
        .expect("dtucker run");
    let dt_time = t0.elapsed();
    let dt_err = out.decomposition.relative_error_sq(&x).expect("error");

    // Tucker-ALS reference.
    let t0 = Instant::now();
    let als = hooi(&x, &HooiConfig::new(&[8, 8, 8])).expect("hooi run");
    let als_time = t0.elapsed();
    let als_err = als.decomposition.relative_error_sq(&x).expect("error");

    println!(
        "D-Tucker:   {:.3}s, error {:.5} ({} sweeps)",
        dt_time.as_secs_f64(),
        dt_err,
        out.trace.iterations()
    );
    println!(
        "Tucker-ALS: {:.3}s, error {:.5} ({} sweeps)  → D-Tucker speedup {:.1}x",
        als_time.as_secs_f64(),
        als_err,
        als.trace.iterations(),
        als_time.as_secs_f64() / dt_time.as_secs_f64().max(1e-9)
    );

    // Background model: the reconstruction averaged over time ≈ the static
    // scene; per-frame residual = foreground energy.
    let rec = out.decomposition.reconstruct().expect("reconstruction");
    let (h, w) = (x.shape()[0], x.shape()[1]);
    let frames = x.shape()[2];
    let mut residuals = Vec::with_capacity(frames);
    for t in 0..frames {
        let orig = x.frontal_slice(t).expect("slice");
        let model = rec.frontal_slice(t).expect("slice");
        let diff = orig.sub(&model).expect("sub");
        residuals.push(diff.fro_norm() / orig.fro_norm().max(1e-12));
    }
    let mean = residuals.iter().sum::<f64>() / frames as f64;
    let max_idx = residuals
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    println!(
        "\nper-frame foreground residual over {} frames of {}x{} pixels:",
        frames, h, w
    );
    println!(
        "  mean {:.4}, max {:.4} at frame {}",
        mean, residuals[max_idx], max_idx
    );

    // Simple sparkline of foreground activity.
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let max_r = residuals.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let line: String = residuals
        .iter()
        .step_by((frames / 60).max(1))
        .map(|&r| glyphs[((r / max_r) * (glyphs.len() - 1) as f64) as usize])
        .collect();
    println!("  activity: [{line}]");
}
