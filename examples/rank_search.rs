//! Automatic rank selection: find the smallest Tucker rank meeting an error
//! budget, paying the expensive pass over the tensor only once.
//!
//! `decompose_to_target_error` compresses the tensor a single time (sized
//! for the largest candidate rank) and then re-runs only the cheap
//! initialization/iteration phases per candidate — the payoff of D-Tucker's
//! decoupled phases.
//!
//! Run with: `cargo run --release --example rank_search`

use dtucker::core::decompose_to_target_error;
use dtucker::DTuckerConfig;
use dtucker_tensor::random::low_rank_plus_noise;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A tensor whose true multilinear rank (6) is unknown to the caller.
    let mut rng = StdRng::seed_from_u64(13);
    let x = low_rank_plus_noise(&[100, 90, 70], &[6, 6, 6], 0.02, &mut rng).expect("generation");
    println!("input {:?}; true rank 6, 2% noise\n", x.shape());

    let base = DTuckerConfig::uniform(1, 3).with_seed(1);
    for target in [0.7f64, 0.2, 0.05, 0.0008] {
        let t0 = Instant::now();
        let (out, rank) = decompose_to_target_error(&x, 16, target, &base).expect("rank search");
        let err = out.decomposition.relative_error_sq(&x).expect("error");
        println!(
            "target {:<7} → rank {:>2}, error {:.5}, {:.3}s",
            target,
            rank,
            err,
            t0.elapsed().as_secs_f64()
        );
    }
    println!("\nThe search doubles the candidate rank (1, 2, 4, 8, 16) until the error");
    println!("budget is met: loose budgets stop at tiny ranks, tight ones jump past the");
    println!("true rank 6 to the next candidate, 8, where the 2%-noise floor (~0.0004)");
    println!("is reached. All candidates reuse one compression pass.");
}
