//! Compression explorer: how the slice rank of the approximation phase
//! trades storage against downstream accuracy, on a hyperspectral scene.
//! Demonstrates the `SlicedTensor` API directly (compress once, decompose
//! many times at different Tucker ranks).
//!
//! Run with: `cargo run --release --example compression_explorer`

use dtucker::{DTucker, DTuckerConfig, SlicedTensor};
use dtucker_data::hsi::{hsi, HsiConfig};

fn main() {
    let x = hsi(&HsiConfig::new(128, 128, 40), 3).expect("generation");
    let dense_mb = x.numel() as f64 * 8.0 / 1e6;
    println!("hyperspectral scene: {:?} ({dense_mb:.1} MB)\n", x.shape());

    println!(
        "{:>10} {:>12} {:>10} {:>14} {:>14}",
        "slice_rank", "store_MB", "ratio", "compress_err", "tucker_err(J=6)"
    );
    for slice_rank in [4usize, 6, 8, 12, 16, 24] {
        let mut cfg = DTuckerConfig::uniform(6, 3).with_seed(9);
        cfg.slice_rank = Some(slice_rank);
        let sliced = SlicedTensor::compress(&x, &cfg).expect("compression");
        let comp_err = sliced.compression_error_sq(&x).expect("compression error");
        let out = DTucker::new(cfg)
            .decompose_sliced(&sliced)
            .expect("decomposition");
        let tuck_err = out.decomposition.relative_error_sq(&x).expect("error");
        println!(
            "{:>10} {:>12.2} {:>9.1}x {:>14.6} {:>14.6}",
            sliced.slice_rank(),
            sliced.memory_bytes() as f64 / 1e6,
            sliced.compression_ratio(),
            comp_err,
            tuck_err
        );
    }

    println!("\nReading the table: once the slice rank comfortably exceeds the Tucker");
    println!("rank (J=6) the decomposition error stops improving — storing more of each");
    println!("slice buys nothing, which is why D-Tucker's default is max(J1,J2)+5.");
}
