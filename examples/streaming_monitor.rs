//! Streaming monitoring: keep a Tucker model of a growing traffic tensor up
//! to date with `DTuckerStream` (the D-TuckerO-style extension) and watch
//! the update cost stay flat while the batch-recompute cost grows with
//! history length.
//!
//! Run with: `cargo run --release --example streaming_monitor`

use dtucker::{DTucker, DTuckerConfig, DTuckerStream};
use dtucker_data::traffic::{traffic, TrafficConfig};
use std::time::Instant;

fn main() {
    // 26 weeks of traffic from 150 sensors at 24 bins/day.
    let cfg = TrafficConfig::new(150, 24, 182);
    let x = traffic(&cfg, 5).expect("generation");
    println!(
        "full history: {:?} ({:.1} MB)",
        x.shape(),
        x.numel() as f64 * 8.0 / 1e6
    );

    let dcfg = DTuckerConfig::uniform(5, 3).with_seed(2);

    // Bootstrap on the first 4 weeks.
    let head = x.subtensor_last(0, 28).expect("head");
    let t0 = Instant::now();
    let mut stream = DTuckerStream::new(&head, dcfg.clone()).expect("stream init");
    println!("bootstrap on 28 days: {:.3}s\n", t0.elapsed().as_secs_f64());

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "days", "update_s", "batch_s", "stream_err", "speedup"
    );
    let mut day = 28;
    while day < 182 {
        let next = (day + 14).min(182);
        let block = x.subtensor_last(day, next).expect("block");

        let t0 = Instant::now();
        stream.append(&block).expect("append");
        let update = t0.elapsed().as_secs_f64();

        let seen = x.subtensor_last(0, next).expect("seen");
        let t0 = Instant::now();
        let batch = DTucker::new(dcfg.clone()).decompose(&seen).expect("batch");
        let batch_t = t0.elapsed().as_secs_f64();
        drop(batch);

        let err = stream
            .decomposition()
            .expect("decomposition")
            .relative_error_sq(&seen)
            .expect("error");
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>12.4} {:>9.1}x",
            next,
            update,
            batch_t,
            err,
            batch_t / update.max(1e-9)
        );
        day = next;
    }

    println!(
        "\nfinal model: {} timesteps, compression {:.1}x, last refresh used {} sweeps",
        stream.timesteps(),
        stream.sliced().compression_ratio(),
        stream.last_trace().iterations()
    );
}
