//! Quickstart: decompose a dense tensor with D-Tucker in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`

use dtucker::{DTucker, DTuckerConfig};
use dtucker_tensor::random::low_rank_plus_noise;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Get a dense tensor. Here: a 120×100×80 tensor that is approximately
    //    rank-(5,5,5) with 5% noise (≈ 7.7 MB of f64s).
    let mut rng = StdRng::seed_from_u64(42);
    let x = low_rank_plus_noise(&[120, 100, 80], &[5, 5, 5], 0.05, &mut rng)
        .expect("tensor generation");
    println!(
        "input: {:?} ({} elements, ‖X‖ = {:.2})",
        x.shape(),
        x.numel(),
        x.fro_norm()
    );

    // 2. Configure D-Tucker: target multilinear rank (5,5,5), defaults for
    //    everything else (oversampling 5, 1 power iteration, tol 1e-4).
    let config = DTuckerConfig::uniform(5, 3).with_seed(0);
    let solver = DTucker::new(config);

    // 3. Decompose.
    let out = solver.decompose(&x).expect("decomposition");

    // 4. Inspect the result.
    let d = &out.decomposition;
    println!("core shape: {:?}", d.core.shape());
    for (n, f) in d.factors.iter().enumerate() {
        println!(
            "factor {n}: {:?}, orthonormal: {}",
            f.shape(),
            f.has_orthonormal_cols(1e-8)
        );
    }
    println!(
        "relative error ‖X−X̂‖²/‖X‖² = {:.5}",
        d.relative_error_sq(&x).expect("error evaluation")
    );
    println!(
        "phases: approx {:.3}s | init {:.3}s | iter {:.3}s ({} sweeps{})",
        out.timings.approximation.as_secs_f64(),
        out.timings.initialization.as_secs_f64(),
        out.timings.iteration.as_secs_f64(),
        out.trace.iterations(),
        if out.trace.converged {
            ", converged"
        } else {
            ""
        },
    );
    println!(
        "compressed representation: {:.1}x smaller than the raw tensor",
        out.sliced.compression_ratio()
    );

    // 5. The compressed slices can be reused to decompose at another rank
    //    without touching the raw tensor again.
    let smaller = DTucker::new(DTuckerConfig::uniform(3, 3))
        .decompose_sliced(&out.sliced)
        .expect("re-decomposition");
    println!(
        "rank-3 re-run from the same compression: error {:.5} in {:.3}s (no approximation phase)",
        smaller
            .decomposition
            .relative_error_sq(&x)
            .expect("error evaluation"),
        smaller.timings.total().as_secs_f64()
    );
}
