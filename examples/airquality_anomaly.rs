//! Anomaly detection on an air-quality panel: decompose the (station ×
//! pollutant × day) tensor with D-Tucker, then rank days by how badly the
//! low-rank model explains them. Days carrying injected pollution episodes
//! should surface at the top.
//!
//! Run with: `cargo run --release --example airquality_anomaly`

use dtucker::core::{anomalous_indices, error_profile_last_mode};
use dtucker::{DTucker, DTuckerConfig};
use dtucker_data::airquality::{airquality, AirQualityConfig};

fn main() {
    // A year of daily readings from 80 stations and 6 pollutants.
    let cfg = AirQualityConfig::new(80, 6, 365);
    let mut x = airquality(&cfg, 11).expect("generation");
    println!("panel: {:?}", x.shape());

    // Inject three pollution episodes: a few days where one region's
    // stations spike across all pollutants.
    // Stations are picked with a stride so the episode is *not* spatially
    // smooth — a low-rank model with smooth station factors cannot absorb
    // it, which is exactly what makes it an anomaly.
    let episodes = [45usize, 172, 301];
    for (e, &day) in episodes.iter().enumerate() {
        for k in 0..20 {
            let s = (k * 13 + e * 7) % 80;
            for p in 0..6 {
                let v = x.get(&[s, p, day]);
                x.set(&[s, p, day], v + if k % 2 == 0 { 6.0 } else { -6.0 });
            }
        }
    }
    println!("injected episodes on days {:?}", episodes);

    // Decompose at rank (5, 4, 5).
    let mut dcfg = DTuckerConfig::new(&[5, 4, 5]);
    dcfg.seed = 3;
    let out = DTucker::new(dcfg).decompose(&x).expect("dtucker");
    println!(
        "model error {:.4} in {:.3}s",
        out.decomposition.relative_error_sq(&x).expect("error"),
        out.timings.total().as_secs_f64()
    );

    // Per-day residual profile along the temporal (last) mode, using the
    // library's profiling API.
    let profile = error_profile_last_mode(&out.decomposition, &x).expect("profiling");
    let mut scores: Vec<(usize, f64)> = profile.iter().copied().enumerate().collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    let flagged = anomalous_indices(&profile, 2.0);
    println!("days beyond mean + 2σ: {flagged:?}");

    println!("\ntop-5 anomalous days (day, residual ratio):");
    let mut hits = 0;
    for &(d, s) in scores.iter().take(5) {
        let marker = if episodes.contains(&d) {
            hits += 1;
            "  ← injected episode"
        } else {
            ""
        };
        println!("  day {d:>3}: {s:.4}{marker}");
    }
    println!(
        "\nrecovered {hits}/{} injected episodes in the top 5",
        episodes.len()
    );
    assert!(
        hits >= 2,
        "anomaly detection should surface most injected episodes"
    );
}
