//! Discovery on a stock-market panel — the style of analysis the authors
//! showcase on their Korean-stocks dataset: decompose (stock × feature ×
//! day), then
//!
//! 1. cluster stocks by their latent factor rows (sector recovery), and
//! 2. scan the temporal factor for market-shock windows.
//!
//! Run with: `cargo run --release --example stock_discovery`

use dtucker::{DTucker, DTuckerConfig};
use dtucker_data::stock::{sector_of, stock, StockConfig};
use dtucker_linalg::norms;

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norms::fro_norm(a);
    let nb = norms::fro_norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        norms::dot(a, b) / (na * nb)
    }
}

fn main() {
    // 120 stocks in 4 sectors, 8 features, 250 trading days, with a crash
    // window around day 150.
    let mut cfg = StockConfig::new(120, 8, 250);
    cfg.shocks = vec![(150, 8, 2.5)];
    let x = stock(&cfg, 21).expect("generation");
    println!(
        "panel {:?}, {} sectors, crash at days 150..158\n",
        x.shape(),
        cfg.sectors
    );

    let out = DTucker::new(DTuckerConfig::new(&[5, 4, 5]).with_seed(2))
        .decompose(&x)
        .expect("decomposition");
    let d = &out.decomposition;
    println!(
        "model error {:.4} in {:.3}s\n",
        d.relative_error_sq(&x).expect("error"),
        out.timings.total().as_secs_f64()
    );

    // ---- 1. Sector recovery ------------------------------------------
    // Same-sector stock pairs should have more similar factor rows than
    // cross-sector pairs.
    let a1 = &d.factors[0];
    let (mut same, mut same_n, mut cross, mut cross_n) = (0.0, 0usize, 0.0, 0usize);
    for i in 0..cfg.stocks {
        for j in (i + 1)..cfg.stocks {
            let c = cosine(a1.row(i), a1.row(j)).abs();
            if sector_of(i, cfg.sectors) == sector_of(j, cfg.sectors) {
                same += c;
                same_n += 1;
            } else {
                cross += c;
                cross_n += 1;
            }
        }
    }
    let same_avg = same / same_n as f64;
    let cross_avg = cross / cross_n as f64;
    println!("sector structure in the stock factor:");
    println!("  mean |cos| within sectors : {same_avg:.3}");
    println!("  mean |cos| across sectors : {cross_avg:.3}");
    assert!(
        same_avg > cross_avg + 0.05,
        "factor rows should separate sectors ({same_avg:.3} vs {cross_avg:.3})"
    );
    println!("  → latent rows recover the sector grouping\n");

    // Nearest neighbours of stock 0 should be its sector mates.
    let mut sims: Vec<(usize, f64)> = (1..cfg.stocks)
        .map(|s| (s, cosine(a1.row(0), a1.row(s)).abs()))
        .collect();
    sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let top5: Vec<usize> = sims.iter().take(5).map(|&(s, _)| s).collect();
    let mates = top5
        .iter()
        .filter(|&&s| sector_of(s, cfg.sectors) == 0)
        .count();
    println!("stock 0 (sector 0) nearest neighbours: {top5:?} — {mates}/5 in sector 0\n");

    // ---- 2. Shock detection in the temporal factor --------------------
    // Day-over-day movement of the temporal factor row spikes when the
    // market regime jumps in or out of the crash window.
    let a3 = &d.factors[2];
    let mut jumps: Vec<(usize, f64)> = (1..cfg.days)
        .map(|t| {
            let prev = a3.row(t - 1);
            let cur = a3.row(t);
            let diff: f64 = prev
                .iter()
                .zip(cur.iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            (t, diff)
        })
        .collect();
    jumps.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("largest day-over-day jumps in the temporal factor:");
    let mut hits = 0;
    for &(t, j) in jumps.iter().take(4) {
        let in_window = (149..=158).contains(&t);
        if in_window {
            hits += 1;
        }
        println!(
            "  day {t:>3}: jump {j:.4}{}",
            if in_window {
                "  ← crash boundary"
            } else {
                ""
            }
        );
    }
    assert!(
        hits >= 1,
        "the crash window must surface among the top jumps"
    );
    println!("\n→ the temporal factor isolates the injected market shock.");
}
