//! Command-line front door for the dtucker workspace.
//!
//! ```text
//! dtucker-cli generate    --dataset boats --scale ci --seed 0 --out x.dten
//! dtucker-cli info        --input x.dten
//! dtucker-cli compress    --input x.dten --rank J [--chunk C] [--seed S] --out art.dts
//! dtucker-cli decompose   --input x.dten | --sliced art.dts  --rank J
//!                         [--method dtucker|hooi|hosvd|st-hosvd|mach|rtd] [--seed S]
//!                         [--save-core core.dten] [--save-decomp d.dts]
//!                         [--checkpoint ck.dts [--checkpoint-every N]]
//! dtucker-cli resume      --sliced art.dts --checkpoint ck.dts [--save-decomp d.dts]
//! dtucker-cli reconstruct --decomp d.dts | --sliced art.dts  --out xhat.dten
//! ```
//!
//! `compress` never materializes the input tensor: slices stream from the
//! `.dten` file in bounded chunks, and the result is bit-identical to the
//! in-memory path. `decompose --checkpoint` makes long runs kill-safe;
//! `resume` continues them to the same factors the uninterrupted run
//! would have produced.

use dtucker::{DTucker, DTuckerConfig, DTuckerOutput, SliceSource, SlicedTensor};
use dtucker_baselines::{hooi, hosvd, mach, rtd, st_hosvd, HooiConfig, MachConfig, RtdConfig};
use dtucker_data::{generate, parse_scale, Dataset};
use dtucker_store::{self as store, DtenSliceSource, HooiCheckpoint};
use dtucker_tensor::io;
use std::process::ExitCode;
use std::time::Instant;

fn opt(args: &[String], key: &str) -> Option<String> {
    let flag = format!("--{key}");
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!();
    eprintln!("usage:");
    eprintln!(
        "  dtucker-cli generate    --dataset <name> [--scale ci|bench|paper] [--seed S] --out <file>"
    );
    eprintln!("  dtucker-cli info      --input <file>");
    eprintln!(
        "  dtucker-cli compress    --input <x.dten> --rank J [--chunk C] [--seed S] --out <art.dts>"
    );
    eprintln!("  dtucker-cli decompose --input <x.dten> | --sliced <art.dts>  --rank J");
    eprintln!("                        [--method NAME] [--seed S] [--save-core <file>]");
    eprintln!("                        [--save-decomp <d.dts>] [--checkpoint <ck.dts> [--checkpoint-every N]]");
    eprintln!(
        "  dtucker-cli resume    --sliced <art.dts> --checkpoint <ck.dts> [--save-decomp <d.dts>]"
    );
    eprintln!("  dtucker-cli reconstruct --decomp <d.dts> | --sliced <art.dts>  --out <xhat.dten>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args),
        Some("info") => cmd_info(&args),
        Some("compress") => cmd_compress(&args),
        Some("decompose") => cmd_decompose(&args),
        Some("resume") => cmd_resume(&args),
        Some("reconstruct") => cmd_reconstruct(&args),
        _ => fail("missing or unknown subcommand"),
    }
}

/// Runs the checkpointable D-Tucker path, writing a checkpoint artifact
/// every `every` sweeps (and at the final sweep) when a path is given.
fn run_resumable(
    sliced: &SlicedTensor,
    cfg: &DTuckerConfig,
    resume: Option<dtucker::SweepState>,
    ckpt: Option<&str>,
    every: usize,
) -> Result<DTuckerOutput, String> {
    let solver = DTucker::new(cfg.clone());
    let mut written = 0usize;
    let out = solver
        .decompose_sliced_resumable(sliced, resume, &mut |snap| {
            if let Some(path) = ckpt {
                if snap.sweep % every.max(1) == 0 || snap.done {
                    let ck = HooiCheckpoint::from_snapshot(&snap, sliced, cfg);
                    store::write_checkpoint(path, &ck).map_err(|e| {
                        dtucker::core::CoreError::InvalidConfig {
                            details: format!("checkpoint write failed: {e}"),
                        }
                    })?;
                    written += 1;
                }
            }
            Ok(())
        })
        .map_err(|e| e.to_string())?;
    if let Some(path) = ckpt {
        println!("checkpoint  {written} snapshot(s) written to {path}");
    }
    Ok(out)
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let Some(name) = opt(args, "dataset") else {
        return fail("--dataset is required");
    };
    let Some(ds) = Dataset::parse(&name) else {
        return fail("unknown dataset");
    };
    let scale = match parse_scale(&opt(args, "scale").unwrap_or_else(|| "ci".into())) {
        Ok(s) => s,
        Err(e) => return fail(&e.to_string()),
    };
    let seed: u64 = opt(args, "seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let Some(out) = opt(args, "out") else {
        return fail("--out is required");
    };

    let t0 = Instant::now();
    let x = match generate(ds, scale, seed) {
        Ok(x) => x,
        Err(e) => return fail(&e.to_string()),
    };
    if let Err(e) = io::save(&x, &out) {
        return fail(&e.to_string());
    }
    println!(
        "wrote {out}: {:?}, {:.1} MB, generated in {:.2}s",
        x.shape(),
        x.numel() as f64 * 8.0 / 1e6,
        t0.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(input) = opt(args, "input") else {
        return fail("--input is required");
    };
    let x = match io::load(&input) {
        Ok(x) => x,
        Err(e) => return fail(&e.to_string()),
    };
    println!("{input}:");
    println!("  shape   {:?} (order {})", x.shape(), x.order());
    println!(
        "  numel   {} ({:.1} MB)",
        x.numel(),
        x.numel() as f64 * 8.0 / 1e6
    );
    println!("  ‖X‖_F   {:.6}", x.fro_norm());
    println!("  max|x|  {:.6}", x.max_abs());
    println!("  finite  {}", x.is_finite());
    ExitCode::SUCCESS
}

fn cmd_compress(args: &[String]) -> ExitCode {
    let Some(input) = opt(args, "input") else {
        return fail("--input is required");
    };
    let Some(rank) = opt(args, "rank").and_then(|v| v.parse::<usize>().ok()) else {
        return fail("--rank J is required");
    };
    let Some(out) = opt(args, "out") else {
        return fail("--out is required");
    };
    let chunk: usize = opt(args, "chunk").and_then(|v| v.parse().ok()).unwrap_or(0);
    let seed: u64 = opt(args, "seed").and_then(|v| v.parse().ok()).unwrap_or(0);

    let mut src = match DtenSliceSource::open(&input) {
        Ok(s) => s,
        Err(e) => return fail(&e.to_string()),
    };
    let n = src.shape().len();
    let j = rank.min(*src.shape().iter().min().expect("non-empty shape"));
    if j < rank {
        eprintln!("note: rank clamped to {j} (smallest mode)");
    }
    let cfg = DTuckerConfig::uniform(j, n)
        .with_seed(seed)
        .with_chunk_slices(chunk);

    let t0 = Instant::now();
    let st = match SlicedTensor::compress_source(&mut src, &cfg) {
        Ok(st) => st,
        Err(e) => return fail(&e.to_string()),
    };
    if let Err(e) = store::write_sliced(&out, &st) {
        return fail(&e.to_string());
    }
    println!("input       {input} {:?}", src.original_shape());
    println!(
        "slices      {} of rank {} (chunked {} at a time)",
        st.num_slices(),
        st.slice_rank(),
        cfg.effective_chunk_slices(st.num_slices())
    );
    println!("time        {:.3}s", t0.elapsed().as_secs_f64());
    println!(
        "compressed  {:.2} MB ({:.1}x smaller than dense), written to {out}",
        st.memory_bytes() as f64 / 1e6,
        st.compression_ratio()
    );
    ExitCode::SUCCESS
}

fn cmd_decompose(args: &[String]) -> ExitCode {
    let input = opt(args, "input");
    let sliced_path = opt(args, "sliced");
    if input.is_some() == sliced_path.is_some() {
        return fail("exactly one of --input / --sliced is required");
    }
    let Some(rank) = opt(args, "rank").and_then(|v| v.parse::<usize>().ok()) else {
        return fail("--rank J is required");
    };
    let method = opt(args, "method").unwrap_or_else(|| "dtucker".into());
    let seed: u64 = opt(args, "seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let ckpt = opt(args, "checkpoint");
    let every: usize = opt(args, "checkpoint-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if ckpt.is_some() && method != "dtucker" {
        return fail("--checkpoint is only supported for --method dtucker");
    }

    // Dense tensor (when given a `.dten`) and compressed representation
    // (always, for the dtucker path).
    let x = match &input {
        Some(path) => match io::load(path) {
            Ok(x) => Some(x),
            Err(e) => return fail(&e.to_string()),
        },
        None => None,
    };

    let t0 = Instant::now();
    let d = if method == "dtucker" {
        let st = match (&x, &sliced_path) {
            (Some(x), _) => {
                let n = x.order();
                let j = rank.min(*x.shape().iter().min().expect("non-empty shape"));
                if j < rank {
                    eprintln!("note: rank clamped to {j} (smallest mode)");
                }
                let cfg = DTuckerConfig::uniform(j, n).with_seed(seed);
                let mut src = match dtucker::InMemorySource::new(x) {
                    Ok(s) => s,
                    Err(e) => return fail(&e.to_string()),
                };
                match SlicedTensor::compress_source(&mut src, &cfg) {
                    Ok(st) => st,
                    Err(e) => return fail(&e.to_string()),
                }
            }
            (None, Some(path)) => match store::read_sliced(path) {
                Ok(st) => st,
                Err(e) => return fail(&e.to_string()),
            },
            (None, None) => unreachable!("validated above"),
        };
        let n = st.shape().len();
        let j = rank
            .min(*st.shape().iter().min().expect("non-empty shape"))
            .min(st.slice_rank());
        if j < rank && x.is_none() {
            eprintln!("note: rank clamped to {j} (smallest mode / slice rank)");
        }
        let cfg = DTuckerConfig::uniform(j, n).with_seed(seed);
        let out = match run_resumable(&st, &cfg, None, ckpt.as_deref(), every) {
            Ok(o) => o,
            Err(e) => return fail(&e),
        };
        println!(
            "iterations  {} (converged: {})",
            out.trace.iterations(),
            out.trace.converged
        );
        out.decomposition
    } else {
        let Some(x) = &x else {
            return fail("baseline methods need a dense --input (not --sliced)");
        };
        let n = x.order();
        let j = rank.min(*x.shape().iter().min().expect("non-empty shape"));
        if j < rank {
            eprintln!("note: rank clamped to {j} (smallest mode)");
        }
        let ranks = vec![j; n];
        let result = match method.as_str() {
            "hooi" => {
                let mut c = HooiConfig::new(&ranks);
                c.seed = seed;
                hooi(x, &c).map(|o| o.decomposition)
            }
            "hosvd" => hosvd(x, &ranks).map(|o| o.decomposition),
            "st-hosvd" => st_hosvd(x, &ranks).map(|o| o.decomposition),
            "mach" => {
                let mut c = MachConfig::new(&ranks);
                c.seed = seed;
                mach(x, &c).map(|o| o.decomposition)
            }
            "rtd" => {
                let mut c = RtdConfig::new(&ranks);
                c.seed = seed;
                rtd(x, &c).map(|o| o.decomposition)
            }
            other => return fail(&format!("unknown method '{other}'")),
        };
        match result {
            Ok(d) => d,
            Err(e) => return fail(&e.to_string()),
        }
    };
    let elapsed = t0.elapsed();

    println!("method      {method}");
    println!("ranks       {:?}", d.ranks());
    println!("time        {:.3}s", elapsed.as_secs_f64());
    match &x {
        Some(x) => match d.relative_error_sq(x) {
            Ok(e) => println!("rel. error  {e:.6}"),
            Err(e) => return fail(&e.to_string()),
        },
        None => {
            // No dense tensor in memory: report the projection error
            // implied by ‖X‖² and the core energy.
            let st = store::read_sliced(sliced_path.as_ref().expect("sliced path"));
            match st {
                Ok(st) => println!("proj. error {:.6}", d.projection_error_sq(st.norm_x_sq())),
                Err(e) => return fail(&e.to_string()),
            }
        }
    }
    let dense_bytes: usize = d.full_shape().iter().product::<usize>() * 8;
    println!(
        "model size  {:.2} MB ({:.1}x smaller than dense)",
        d.memory_bytes() as f64 / 1e6,
        dense_bytes as f64 / d.memory_bytes().max(1) as f64
    );
    if let Some(path) = opt(args, "save-core") {
        if let Err(e) = io::save(&d.core, &path) {
            return fail(&e.to_string());
        }
        println!("core        written to {path}");
    }
    if let Some(path) = opt(args, "save-decomp") {
        if let Err(e) = store::write_decomposition(&path, &d) {
            return fail(&e.to_string());
        }
        println!("decomp      written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_resume(args: &[String]) -> ExitCode {
    let Some(sliced_path) = opt(args, "sliced") else {
        return fail("--sliced is required");
    };
    let Some(ckpt_path) = opt(args, "checkpoint") else {
        return fail("--checkpoint is required");
    };
    let every: usize = opt(args, "checkpoint-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let st = match store::read_sliced(&sliced_path) {
        Ok(st) => st,
        Err(e) => return fail(&e.to_string()),
    };
    let ck = match store::read_checkpoint(&ckpt_path) {
        Ok(ck) => ck,
        Err(e) => return fail(&e.to_string()),
    };
    // The checkpoint carries the full run identity; rebuild the exact
    // configuration instead of asking the user to repeat it.
    let mut cfg = DTuckerConfig::new(&ck.ranks).with_seed(ck.seed);
    cfg.tolerance = ck.tolerance;
    cfg.max_iters = ck.max_iters;
    if let Err(e) = ck.validate_against(&st, &cfg) {
        return fail(&e.to_string());
    }
    let start_sweep = ck.sweep;
    println!(
        "resuming    sweep {start_sweep} of {} ({ckpt_path})",
        cfg.max_iters
    );

    let t0 = Instant::now();
    let out = match run_resumable(&st, &cfg, Some(ck.into_state()), Some(&ckpt_path), every) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let d = out.decomposition;
    println!(
        "iterations  {} (converged: {})",
        out.trace.iterations(),
        out.trace.converged
    );
    println!("ranks       {:?}", d.ranks());
    println!("time        {:.3}s", t0.elapsed().as_secs_f64());
    println!("proj. error {:.6}", d.projection_error_sq(st.norm_x_sq()));
    if let Some(path) = opt(args, "save-decomp") {
        if let Err(e) = store::write_decomposition(&path, &d) {
            return fail(&e.to_string());
        }
        println!("decomp      written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_reconstruct(args: &[String]) -> ExitCode {
    let Some(out) = opt(args, "out") else {
        return fail("--out is required");
    };
    let decomp = opt(args, "decomp");
    let sliced = opt(args, "sliced");
    if decomp.is_some() == sliced.is_some() {
        return fail("exactly one of --decomp / --sliced is required");
    }

    let t0 = Instant::now();
    let x = if let Some(path) = decomp {
        match store::read_decomposition(&path).and_then(|d| Ok(d.reconstruct()?)) {
            Ok(x) => x,
            Err(e) => return fail(&e.to_string()),
        }
    } else {
        let path = sliced.expect("validated above");
        match store::read_sliced(&path).and_then(|st| Ok(st.reconstruct()?)) {
            Ok(x) => x,
            Err(e) => return fail(&e.to_string()),
        }
    };
    if let Err(e) = io::save(&x, &out) {
        return fail(&e.to_string());
    }
    println!(
        "wrote {out}: {:?}, {:.1} MB, reconstructed in {:.2}s",
        x.shape(),
        x.numel() as f64 * 8.0 / 1e6,
        t0.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
