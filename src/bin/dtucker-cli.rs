//! Command-line front door for the dtucker workspace.
//!
//! ```text
//! dtucker-cli generate    --dataset boats --scale ci --seed 0 --out x.dten
//! dtucker-cli info        --input x.dten
//! dtucker-cli compress    --input x.dten --rank J [--chunk C] [--seed S] --out art.dts
//! dtucker-cli decompose   --input x.dten | --sliced art.dts  --rank J
//!                         [--method dtucker|hooi|hosvd|st-hosvd|mach|rtd] [--seed S]
//!                         [--save-core core.dten] [--save-decomp d.dts]
//!                         [--checkpoint ck.dts [--checkpoint-every N]]
//! dtucker-cli resume      --sliced art.dts --checkpoint ck.dts [--save-decomp d.dts]
//! dtucker-cli reconstruct --decomp d.dts | --sliced art.dts  --out xhat.dten [--range SPEC]
//! dtucker-cli query       --decomp d.dts  --at i,j,k | --range SPEC | --stdin
//!                         [--agg sum|mean|fro] [--out box.dten] [--cache-mb N]
//!                         [--profile] [--verify] [--format text|json]
//! dtucker-cli list        --store DIR [--format text|json]
//! dtucker-cli serve       --store DIR [--addr HOST:PORT] [--threads N]
//!                         [--cache-mb N] [--max-inflight N]
//! ```
//!
//! `compress` never materializes the input tensor: slices stream from the
//! `.dten` file in bounded chunks, and the result is bit-identical to the
//! in-memory path. `decompose --checkpoint` makes long runs kill-safe;
//! `resume` continues them to the same factors the uninterrupted run
//! would have produced.
//!
//! `query` serves values straight from the factored form — the full
//! tensor is never materialized (except under `--verify`, which checks
//! every answer against naive reconstruction). A range `SPEC` is one
//! comma-separated term per mode: `i`, `lo:hi`, `lo:`, `:hi`, or `:`
//! (e.g. `3,0:10,:`). `--stdin` reads one spec per line and serves them
//! as a batch, reordered so queries sharing a contraction prefix hit the
//! partial-contraction cache. `--format json` emits the exact same
//! encoding the HTTP server uses (one shared writer), with diagnostics on
//! stderr so piped stdout stays pure JSON.
//!
//! `serve` starts the std-only HTTP/1.1 server over every Tucker artifact
//! in a store directory (see DESIGN.md §12 for the API); `list` shows a
//! store's contents, with per-file warnings on stderr.

use dtucker::serve::json::{write_aggregate, write_result, JsonWriter};
use dtucker::serve::{load_store_artifacts, ServeConfig, Server};
use dtucker::{
    ArtifactStore, DTucker, DTuckerConfig, DTuckerOutput, DenseTensor, QueryEngine, Range,
    SliceSource, SlicedTensor,
};
use dtucker_baselines::{hooi, hosvd, mach, rtd, st_hosvd, HooiConfig, MachConfig, RtdConfig};
use dtucker_data::{generate, parse_scale, Dataset};
use dtucker_store::{self as store, DtenSliceSource, HooiCheckpoint};
use dtucker_tensor::io;
use std::process::ExitCode;
use std::time::Instant;

fn opt(args: &[String], key: &str) -> Option<String> {
    let flag = format!("--{key}");
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!();
    eprintln!("usage:");
    eprintln!(
        "  dtucker-cli generate    --dataset <name> [--scale ci|bench|paper] [--seed S] --out <file>"
    );
    eprintln!("  dtucker-cli info      --input <file>");
    eprintln!(
        "  dtucker-cli compress    --input <x.dten> --rank J [--chunk C] [--seed S] --out <art.dts>"
    );
    eprintln!("  dtucker-cli decompose --input <x.dten> | --sliced <art.dts>  --rank J");
    eprintln!("                        [--method NAME] [--seed S] [--save-core <file>]");
    eprintln!("                        [--save-decomp <d.dts>] [--checkpoint <ck.dts> [--checkpoint-every N]]");
    eprintln!(
        "  dtucker-cli resume    --sliced <art.dts> --checkpoint <ck.dts> [--save-decomp <d.dts>]"
    );
    eprintln!("  dtucker-cli reconstruct --decomp <d.dts> | --sliced <art.dts>  --out <xhat.dten> [--range SPEC]");
    eprintln!("  dtucker-cli query     --decomp <d.dts>  --at i,j,k | --range SPEC | --stdin");
    eprintln!("                        [--agg sum|mean|fro] [--out <box.dten>] [--cache-mb N] [--profile] [--verify]");
    eprintln!("                        [--format text|json]");
    eprintln!("  dtucker-cli list      --store <dir> [--format text|json]");
    eprintln!("  dtucker-cli serve     --store <dir> [--addr HOST:PORT] [--threads N] [--cache-mb N] [--max-inflight N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args),
        Some("info") => cmd_info(&args),
        Some("compress") => cmd_compress(&args),
        Some("decompose") => cmd_decompose(&args),
        Some("resume") => cmd_resume(&args),
        Some("reconstruct") => cmd_reconstruct(&args),
        Some("query") => cmd_query(&args),
        Some("list") => cmd_list(&args),
        Some("serve") => cmd_serve(&args),
        _ => fail("missing or unknown subcommand"),
    }
}

/// Runs the checkpointable D-Tucker path, writing a checkpoint artifact
/// every `every` sweeps (and at the final sweep) when a path is given.
fn run_resumable(
    sliced: &SlicedTensor,
    cfg: &DTuckerConfig,
    resume: Option<dtucker::SweepState>,
    ckpt: Option<&str>,
    every: usize,
) -> Result<DTuckerOutput, String> {
    let solver = DTucker::new(cfg.clone());
    let mut written = 0usize;
    let out = solver
        .decompose_sliced_resumable(sliced, resume, &mut |snap| {
            if let Some(path) = ckpt {
                if snap.sweep % every.max(1) == 0 || snap.done {
                    let ck = HooiCheckpoint::from_snapshot(&snap, sliced, cfg);
                    store::write_checkpoint(path, &ck).map_err(|e| {
                        dtucker::core::CoreError::InvalidConfig {
                            details: format!("checkpoint write failed: {e}"),
                        }
                    })?;
                    written += 1;
                }
            }
            Ok(())
        })
        .map_err(|e| e.to_string())?;
    if let Some(path) = ckpt {
        println!("checkpoint  {written} snapshot(s) written to {path}");
    }
    Ok(out)
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let Some(name) = opt(args, "dataset") else {
        return fail("--dataset is required");
    };
    let Some(ds) = Dataset::parse(&name) else {
        return fail("unknown dataset");
    };
    let scale = match parse_scale(&opt(args, "scale").unwrap_or_else(|| "ci".into())) {
        Ok(s) => s,
        Err(e) => return fail(&e.to_string()),
    };
    let seed: u64 = opt(args, "seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let Some(out) = opt(args, "out") else {
        return fail("--out is required");
    };

    let t0 = Instant::now();
    let x = match generate(ds, scale, seed) {
        Ok(x) => x,
        Err(e) => return fail(&e.to_string()),
    };
    if let Err(e) = io::save(&x, &out) {
        return fail(&e.to_string());
    }
    println!(
        "wrote {out}: {:?}, {:.1} MB, generated in {:.2}s",
        x.shape(),
        x.numel() as f64 * 8.0 / 1e6,
        t0.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(input) = opt(args, "input") else {
        return fail("--input is required");
    };
    let x = match io::load(&input) {
        Ok(x) => x,
        Err(e) => return fail(&e.to_string()),
    };
    println!("{input}:");
    println!("  shape   {:?} (order {})", x.shape(), x.order());
    println!(
        "  numel   {} ({:.1} MB)",
        x.numel(),
        x.numel() as f64 * 8.0 / 1e6
    );
    println!("  ‖X‖_F   {:.6}", x.fro_norm());
    println!("  max|x|  {:.6}", x.max_abs());
    println!("  finite  {}", x.is_finite());
    ExitCode::SUCCESS
}

fn cmd_compress(args: &[String]) -> ExitCode {
    let Some(input) = opt(args, "input") else {
        return fail("--input is required");
    };
    let Some(rank) = opt(args, "rank").and_then(|v| v.parse::<usize>().ok()) else {
        return fail("--rank J is required");
    };
    let Some(out) = opt(args, "out") else {
        return fail("--out is required");
    };
    let chunk: usize = opt(args, "chunk").and_then(|v| v.parse().ok()).unwrap_or(0);
    let seed: u64 = opt(args, "seed").and_then(|v| v.parse().ok()).unwrap_or(0);

    let mut src = match DtenSliceSource::open(&input) {
        Ok(s) => s,
        Err(e) => return fail(&e.to_string()),
    };
    let n = src.shape().len();
    let j = rank.min(*src.shape().iter().min().expect("non-empty shape"));
    if j < rank {
        eprintln!("note: rank clamped to {j} (smallest mode)");
    }
    let cfg = DTuckerConfig::uniform(j, n)
        .with_seed(seed)
        .with_chunk_slices(chunk);

    let t0 = Instant::now();
    let st = match SlicedTensor::compress_source(&mut src, &cfg) {
        Ok(st) => st,
        Err(e) => return fail(&e.to_string()),
    };
    if let Err(e) = store::write_sliced(&out, &st) {
        return fail(&e.to_string());
    }
    println!("input       {input} {:?}", src.original_shape());
    println!(
        "slices      {} of rank {} (chunked {} at a time)",
        st.num_slices(),
        st.slice_rank(),
        cfg.effective_chunk_slices(st.num_slices())
    );
    println!("time        {:.3}s", t0.elapsed().as_secs_f64());
    println!(
        "compressed  {:.2} MB ({:.1}x smaller than dense), written to {out}",
        st.memory_bytes() as f64 / 1e6,
        st.compression_ratio()
    );
    ExitCode::SUCCESS
}

fn cmd_decompose(args: &[String]) -> ExitCode {
    let input = opt(args, "input");
    let sliced_path = opt(args, "sliced");
    if input.is_some() == sliced_path.is_some() {
        return fail("exactly one of --input / --sliced is required");
    }
    let Some(rank) = opt(args, "rank").and_then(|v| v.parse::<usize>().ok()) else {
        return fail("--rank J is required");
    };
    let method = opt(args, "method").unwrap_or_else(|| "dtucker".into());
    let seed: u64 = opt(args, "seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let ckpt = opt(args, "checkpoint");
    let every: usize = opt(args, "checkpoint-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if ckpt.is_some() && method != "dtucker" {
        return fail("--checkpoint is only supported for --method dtucker");
    }

    // Dense tensor (when given a `.dten`) and compressed representation
    // (always, for the dtucker path).
    let x = match &input {
        Some(path) => match io::load(path) {
            Ok(x) => Some(x),
            Err(e) => return fail(&e.to_string()),
        },
        None => None,
    };

    let t0 = Instant::now();
    let d = if method == "dtucker" {
        let st = match (&x, &sliced_path) {
            (Some(x), _) => {
                let n = x.order();
                let j = rank.min(*x.shape().iter().min().expect("non-empty shape"));
                if j < rank {
                    eprintln!("note: rank clamped to {j} (smallest mode)");
                }
                let cfg = DTuckerConfig::uniform(j, n).with_seed(seed);
                let mut src = match dtucker::InMemorySource::new(x) {
                    Ok(s) => s,
                    Err(e) => return fail(&e.to_string()),
                };
                match SlicedTensor::compress_source(&mut src, &cfg) {
                    Ok(st) => st,
                    Err(e) => return fail(&e.to_string()),
                }
            }
            (None, Some(path)) => match store::read_sliced(path) {
                Ok(st) => st,
                Err(e) => return fail(&e.to_string()),
            },
            (None, None) => unreachable!("validated above"),
        };
        let n = st.shape().len();
        let j = rank
            .min(*st.shape().iter().min().expect("non-empty shape"))
            .min(st.slice_rank());
        if j < rank && x.is_none() {
            eprintln!("note: rank clamped to {j} (smallest mode / slice rank)");
        }
        let cfg = DTuckerConfig::uniform(j, n).with_seed(seed);
        let out = match run_resumable(&st, &cfg, None, ckpt.as_deref(), every) {
            Ok(o) => o,
            Err(e) => return fail(&e),
        };
        println!(
            "iterations  {} (converged: {})",
            out.trace.iterations(),
            out.trace.converged
        );
        out.decomposition
    } else {
        let Some(x) = &x else {
            return fail("baseline methods need a dense --input (not --sliced)");
        };
        let n = x.order();
        let j = rank.min(*x.shape().iter().min().expect("non-empty shape"));
        if j < rank {
            eprintln!("note: rank clamped to {j} (smallest mode)");
        }
        let ranks = vec![j; n];
        let result = match method.as_str() {
            "hooi" => {
                let mut c = HooiConfig::new(&ranks);
                c.seed = seed;
                hooi(x, &c).map(|o| o.decomposition)
            }
            "hosvd" => hosvd(x, &ranks).map(|o| o.decomposition),
            "st-hosvd" => st_hosvd(x, &ranks).map(|o| o.decomposition),
            "mach" => {
                let mut c = MachConfig::new(&ranks);
                c.seed = seed;
                mach(x, &c).map(|o| o.decomposition)
            }
            "rtd" => {
                let mut c = RtdConfig::new(&ranks);
                c.seed = seed;
                rtd(x, &c).map(|o| o.decomposition)
            }
            other => return fail(&format!("unknown method '{other}'")),
        };
        match result {
            Ok(d) => d,
            Err(e) => return fail(&e.to_string()),
        }
    };
    let elapsed = t0.elapsed();

    println!("method      {method}");
    println!("ranks       {:?}", d.ranks());
    println!("time        {:.3}s", elapsed.as_secs_f64());
    match &x {
        Some(x) => match d.relative_error_sq(x) {
            Ok(e) => println!("rel. error  {e:.6}"),
            Err(e) => return fail(&e.to_string()),
        },
        None => {
            // No dense tensor in memory: report the projection error
            // implied by ‖X‖² and the core energy.
            let st = store::read_sliced(sliced_path.as_ref().expect("sliced path"));
            match st {
                Ok(st) => println!("proj. error {:.6}", d.projection_error_sq(st.norm_x_sq())),
                Err(e) => return fail(&e.to_string()),
            }
        }
    }
    let dense_bytes: usize = d.full_shape().iter().product::<usize>() * 8;
    println!(
        "model size  {:.2} MB ({:.1}x smaller than dense)",
        d.memory_bytes() as f64 / 1e6,
        dense_bytes as f64 / d.memory_bytes().max(1) as f64
    );
    if let Some(path) = opt(args, "save-core") {
        if let Err(e) = io::save(&d.core, &path) {
            return fail(&e.to_string());
        }
        println!("core        written to {path}");
    }
    if let Some(path) = opt(args, "save-decomp") {
        if let Err(e) = store::write_decomposition(&path, &d) {
            return fail(&e.to_string());
        }
        println!("decomp      written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_resume(args: &[String]) -> ExitCode {
    let Some(sliced_path) = opt(args, "sliced") else {
        return fail("--sliced is required");
    };
    let Some(ckpt_path) = opt(args, "checkpoint") else {
        return fail("--checkpoint is required");
    };
    let every: usize = opt(args, "checkpoint-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let st = match store::read_sliced(&sliced_path) {
        Ok(st) => st,
        Err(e) => return fail(&e.to_string()),
    };
    let ck = match store::read_checkpoint(&ckpt_path) {
        Ok(ck) => ck,
        Err(e) => return fail(&e.to_string()),
    };
    // The checkpoint carries the full run identity; rebuild the exact
    // configuration instead of asking the user to repeat it.
    let mut cfg = DTuckerConfig::new(&ck.ranks).with_seed(ck.seed);
    cfg.tolerance = ck.tolerance;
    cfg.max_iters = ck.max_iters;
    if let Err(e) = ck.validate_against(&st, &cfg) {
        return fail(&e.to_string());
    }
    let start_sweep = ck.sweep;
    println!(
        "resuming    sweep {start_sweep} of {} ({ckpt_path})",
        cfg.max_iters
    );

    let t0 = Instant::now();
    let out = match run_resumable(&st, &cfg, Some(ck.into_state()), Some(&ckpt_path), every) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let d = out.decomposition;
    println!(
        "iterations  {} (converged: {})",
        out.trace.iterations(),
        out.trace.converged
    );
    println!("ranks       {:?}", d.ranks());
    println!("time        {:.3}s", t0.elapsed().as_secs_f64());
    println!("proj. error {:.6}", d.projection_error_sq(st.norm_x_sq()));
    if let Some(path) = opt(args, "save-decomp") {
        if let Err(e) = store::write_decomposition(&path, &d) {
            return fail(&e.to_string());
        }
        println!("decomp      written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_reconstruct(args: &[String]) -> ExitCode {
    match try_reconstruct(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

/// Reconstruction with an optional `--range SPEC`. The `--decomp` path is
/// served by the query engine, so only the requested box is ever
/// materialized; `--sliced` has no factored form to query and expands the
/// compressed representation first. Out-of-bounds or malformed specs are
/// typed errors, never panics, and the output goes through the atomic
/// write helper (temp file + rename) like every other artifact.
fn try_reconstruct(args: &[String]) -> Result<(), String> {
    let out = opt(args, "out").ok_or("--out is required")?;
    let decomp = opt(args, "decomp");
    let sliced = opt(args, "sliced");
    if decomp.is_some() == sliced.is_some() {
        return Err("exactly one of --decomp / --sliced is required".into());
    }
    let range = opt(args, "range");

    let t0 = Instant::now();
    let x = if let Some(path) = decomp {
        let mut engine = QueryEngine::open(&path).map_err(|e| e.to_string())?;
        let shape = engine.shape().to_vec();
        let r = match &range {
            Some(spec) => Range::parse(spec, &shape).map_err(|e| e.to_string())?,
            None => Range::full(&shape),
        };
        engine.query(&r).map_err(|e| e.to_string())?
    } else {
        let path = sliced.expect("validated above");
        let st = store::read_sliced(&path).map_err(|e| e.to_string())?;
        let x = st.reconstruct().map_err(|e| e.to_string())?;
        match &range {
            Some(spec) => {
                let r = Range::parse(spec, x.shape()).map_err(|e| e.to_string())?;
                x.subtensor(r.bounds()).map_err(|e| e.to_string())?
            }
            None => x,
        }
    };
    io::save(&x, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {:?}, {:.1} MB, reconstructed in {:.2}s",
        x.shape(),
        x.numel() as f64 * 8.0 / 1e6,
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> ExitCode {
    match try_query(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

/// `--verify` tolerance: the engine and the naive oracle sum in different
/// orders, so equality is up to rounding (scaled by the data magnitude).
const VERIFY_TOL: f64 = 1e-8;

fn check_close(spec: &str, got: &DenseTensor, want: &DenseTensor) -> Result<(), String> {
    let scale = 1.0 + want.max_abs();
    for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
        if (a - b).abs() > VERIFY_TOL * scale {
            return Err(format!("verify failed for '{spec}': {a} vs naive {b}"));
        }
    }
    Ok(())
}

fn check_close_scalar(spec: &str, got: f64, want: f64, scale: f64) -> Result<(), String> {
    if (got - want).abs() > VERIFY_TOL * (1.0 + scale) {
        return Err(format!("verify failed for '{spec}': {got} vs naive {want}"));
    }
    Ok(())
}

/// Serves element/range/batch queries from a decomposition artifact.
fn try_query(args: &[String]) -> Result<(), String> {
    let decomp_path = opt(args, "decomp").ok_or("--decomp is required")?;
    let cache_mb: usize = match opt(args, "cache-mb") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--cache-mb '{v}' is not a number"))?,
        None => 64,
    };
    let agg = opt(args, "agg");
    if let Some(a) = &agg {
        if !matches!(a.as_str(), "sum" | "mean" | "fro") {
            return Err(format!("unknown --agg '{a}' (expected sum|mean|fro)"));
        }
    }
    let verify = args.iter().any(|a| a == "--verify");
    let profile = args.iter().any(|a| a == "--profile");
    let format = opt(args, "format").unwrap_or_else(|| "text".into());
    let json = match format.as_str() {
        "json" => true,
        "text" => false,
        other => return Err(format!("unknown --format '{other}' (expected text|json)")),
    };
    let at = opt(args, "at");
    let range = opt(args, "range");
    let use_stdin = args.iter().any(|a| a == "--stdin");
    if [at.is_some(), range.is_some(), use_stdin]
        .iter()
        .filter(|&&b| b)
        .count()
        != 1
    {
        return Err("exactly one of --at / --range / --stdin is required".into());
    }

    let mut engine = QueryEngine::open_with_cache_bytes(&decomp_path, cache_mb << 20)
        .map_err(|e| e.to_string())?;
    let shape = engine.shape().to_vec();

    // `--at i,j,k` is exactly the 1-element range spec `i,j,k`.
    let specs: Vec<String> = if let Some(idx) = at {
        vec![idx]
    } else if let Some(spec) = range {
        vec![spec]
    } else {
        use std::io::BufRead;
        let mut lines = Vec::new();
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| e.to_string())?;
            let line = line.trim();
            if !line.is_empty() {
                lines.push(line.to_string());
            }
        }
        lines
    };
    let ranges: Vec<Range> = specs
        .iter()
        .map(|s| Range::parse(s, &shape).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    // The oracle for --verify: materialize once, slice per query.
    let naive = if verify {
        Some(engine.decomp().reconstruct().map_err(|e| e.to_string())?)
    } else {
        None
    };

    // In JSON mode every result goes through the same writer the HTTP
    // server uses, wrapped as {"results":[...]} — stdout carries nothing
    // but the document.
    let mut json_out = json.then(|| {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("results");
        w.begin_array();
        w
    });

    let t0 = Instant::now();
    match agg.as_deref() {
        Some(kind) => {
            for (spec, r) in specs.iter().zip(&ranges) {
                let v = match kind {
                    "sum" => engine.sum(r),
                    "mean" => engine.mean(r),
                    _ => engine.fro_norm(r),
                }
                .map_err(|e| e.to_string())?;
                if let Some(full) = &naive {
                    let sub = full.subtensor(r.bounds()).map_err(|e| e.to_string())?;
                    let mass: f64 = sub.as_slice().iter().map(|x| x.abs()).sum();
                    let want = match kind {
                        "sum" => sub.as_slice().iter().sum::<f64>(),
                        "mean" => sub.as_slice().iter().sum::<f64>() / sub.numel() as f64,
                        _ => sub.fro_norm(),
                    };
                    check_close_scalar(spec, v, want, mass)?;
                }
                match &mut json_out {
                    Some(w) => write_aggregate(w, spec, kind, v),
                    None => println!("{spec} {kind} = {v:.12e}"),
                }
            }
        }
        None => {
            let out_path = opt(args, "out");
            if out_path.is_some() && ranges.len() != 1 {
                return Err("--out requires exactly one query".into());
            }
            let results = engine.query_batch(&ranges).map_err(|e| e.to_string())?;
            for ((spec, r), t) in specs.iter().zip(&ranges).zip(&results) {
                if let Some(full) = &naive {
                    let sub = full.subtensor(r.bounds()).map_err(|e| e.to_string())?;
                    check_close(spec, t, &sub)?;
                }
                match &mut json_out {
                    Some(w) => write_result(w, spec, t),
                    None if r.numel() == 1 => println!("{spec} = {:.12e}", t.as_slice()[0]),
                    None => println!(
                        "{spec}  shape {:?}  ‖·‖_F = {:.6e}",
                        t.shape(),
                        t.fro_norm()
                    ),
                }
            }
            if let Some(path) = out_path {
                io::save(&results[0], &path).map_err(|e| e.to_string())?;
                if json {
                    eprintln!("wrote {path}");
                } else {
                    println!("wrote {path}");
                }
            }
        }
    }
    if let Some(mut w) = json_out {
        w.end_array();
        w.end_object();
        println!("{}", w.finish());
    }
    let elapsed = t0.elapsed();
    // Diagnostics go to stderr in JSON mode so piped stdout stays a pure
    // document.
    let diag = |line: String| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    if verify {
        diag(format!(
            "verify      OK: {} answer(s) match naive reconstruction",
            specs.len()
        ));
    }
    if profile {
        diag(format!(
            "served      {} quer{} in {:.4}s",
            specs.len(),
            if specs.len() == 1 { "y" } else { "ies" },
            elapsed.as_secs_f64()
        ));
        diag(engine.profile().report());
        let s = engine.cache_stats();
        diag(format!(
            "cache       {} hits / {} misses ({:.0}% hit rate), {} insertions, {} evictions",
            s.hits,
            s.misses,
            100.0 * s.hit_rate(),
            s.insertions,
            s.evictions
        ));
        diag(format!(
            "cache use   {} / {} bytes across {} entr{}",
            engine.cache_used_bytes(),
            engine.cache_budget_bytes(),
            engine.cache_len(),
            if engine.cache_len() == 1 { "y" } else { "ies" }
        ));
    }
    Ok(())
}

/// Lists a store directory's artifacts. Warnings about unreadable or
/// foreign `.dts` files go to stderr so `--format json` stdout stays a
/// clean document for pipelines.
fn try_list(args: &[String]) -> Result<(), String> {
    let dir = opt(args, "store").ok_or("--store is required")?;
    let format = opt(args, "format").unwrap_or_else(|| "text".into());
    if format != "text" && format != "json" {
        return Err(format!("unknown --format '{format}' (expected text|json)"));
    }
    let store = ArtifactStore::open(&dir).map_err(|e| e.to_string())?;
    let (artifacts, skipped) = store.scan().map_err(|e| e.to_string())?;
    for (path, reason) in &skipped {
        eprintln!("warning: skipping {}: {reason}", path.display());
    }
    if format == "json" {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("artifacts");
        w.begin_array();
        for (name, kind) in &artifacts {
            w.begin_object();
            w.key("name");
            w.string(name);
            w.key("kind");
            w.string(&format!("{kind:?}").to_ascii_lowercase());
            w.end_object();
        }
        w.end_array();
        w.end_object();
        println!("{}", w.finish());
    } else {
        for (name, kind) in &artifacts {
            println!("{name}  {}", format!("{kind:?}").to_ascii_lowercase());
        }
        println!("{} artifact(s) in {dir}", artifacts.len());
    }
    Ok(())
}

fn cmd_list(args: &[String]) -> ExitCode {
    match try_list(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

/// Starts the HTTP server over every Tucker decomposition in a store.
/// Blocks until drained via `POST /shutdown`.
fn try_serve(args: &[String]) -> Result<(), String> {
    let dir = opt(args, "store").ok_or("--store is required")?;
    let mut cfg = ServeConfig::default();
    if let Some(addr) = opt(args, "addr") {
        cfg.addr = addr;
    }
    if let Some(v) = opt(args, "threads") {
        cfg.threads = v
            .parse()
            .map_err(|_| format!("--threads '{v}' is not a number"))?;
    }
    if let Some(v) = opt(args, "cache-mb") {
        let mb: usize = v
            .parse()
            .map_err(|_| format!("--cache-mb '{v}' is not a number"))?;
        cfg.cache_bytes = mb << 20;
    }
    if let Some(v) = opt(args, "max-inflight") {
        cfg.max_inflight = v
            .parse()
            .map_err(|_| format!("--max-inflight '{v}' is not a number"))?;
    }

    let store = ArtifactStore::open(&dir).map_err(|e| e.to_string())?;
    let (artifacts, warnings) = load_store_artifacts(&store).map_err(|e| e.to_string())?;
    for w in &warnings {
        eprintln!("warning: {w}");
    }
    for (name, d) in &artifacts {
        println!(
            "serving     {name}: shape {:?}, ranks {:?}",
            d.full_shape(),
            d.ranks()
        );
    }
    let server = Server::bind(cfg, artifacts).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on http://{addr}");
    // The e2e harness starts this binary in the background and parses the
    // line above; make sure it is visible before we block in accept.
    use std::io::Write as _;
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    let stats = server.run().map_err(|e| e.to_string())?;
    println!(
        "drained     {} connection(s), {} request(s), {} shed",
        stats.connections, stats.requests, stats.shed
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> ExitCode {
    match try_serve(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker::tensor::random::random_tucker;
    use dtucker::TuckerDecomp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// Writes a small decomposition artifact and returns its path plus the
    /// naively-reconstructed tensor.
    fn artifact(name: &str) -> (PathBuf, DenseTensor) {
        let dir = std::env::temp_dir().join("dtucker_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}_{}.dts", std::process::id()));
        let mut rng = StdRng::seed_from_u64(11);
        let m = random_tucker(&[6, 5, 4], &[2, 2, 2], &mut rng).unwrap();
        let d = TuckerDecomp {
            core: m.core,
            factors: m.factors,
        };
        let full = d.reconstruct().unwrap();
        store::write_decomposition(&path, &d).unwrap();
        (path, full)
    }

    #[test]
    fn reconstruct_rejects_bad_arguments() {
        let (path, _) = artifact("recon_args");
        let p = path.to_str().unwrap();
        let out = std::env::temp_dir().join("dtucker_cli_tests/never_written.dten");
        let o = out.to_str().unwrap();
        // Missing --out.
        assert!(try_reconstruct(&argv(&["reconstruct", "--decomp", p])).is_err());
        // Neither / both sources.
        assert!(try_reconstruct(&argv(&["reconstruct", "--out", o])).is_err());
        assert!(try_reconstruct(&argv(&[
            "reconstruct",
            "--decomp",
            p,
            "--sliced",
            p,
            "--out",
            o
        ]))
        .is_err());
        // Out-of-bounds and malformed ranges: typed errors, no artifact.
        let e = try_reconstruct(&argv(&[
            "reconstruct",
            "--decomp",
            p,
            "--out",
            o,
            "--range",
            "0:99,:,:",
        ]))
        .unwrap_err();
        assert!(e.contains("exceeds"), "{e}");
        let e = try_reconstruct(&argv(&[
            "reconstruct",
            "--decomp",
            p,
            "--out",
            o,
            "--range",
            "0:2,:",
        ]))
        .unwrap_err();
        assert!(e.contains("modes"), "{e}");
        assert!(try_reconstruct(&argv(&[
            "reconstruct",
            "--decomp",
            p,
            "--out",
            o,
            "--range",
            "x,:,:",
        ]))
        .is_err());
        assert!(!out.exists(), "failed reconstruct must not leave output");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reconstruct_range_matches_naive_slice() {
        let (path, full) = artifact("recon_range");
        let p = path.to_str().unwrap();
        let out = std::env::temp_dir().join(format!(
            "dtucker_cli_tests/range_{}.dten",
            std::process::id()
        ));
        let o = out.to_str().unwrap();
        try_reconstruct(&argv(&[
            "reconstruct",
            "--decomp",
            p,
            "--out",
            o,
            "--range",
            "1:4,2,:",
        ]))
        .unwrap();
        let got = io::load(o).unwrap();
        let want = full.subtensor(&[(1, 4), (2, 3), (0, 4)]).unwrap();
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn query_rejects_bad_arguments() {
        let (path, _) = artifact("query_args");
        let p = path.to_str().unwrap();
        assert!(try_query(&argv(&["query", "--at", "0,0,0"])).is_err());
        // Zero or two selectors.
        assert!(try_query(&argv(&["query", "--decomp", p])).is_err());
        assert!(try_query(&argv(&[
            "query", "--decomp", p, "--at", "0,0,0", "--range", ":,:,:",
        ]))
        .is_err());
        // Bad aggregate, bad cache size, out-of-bounds element.
        assert!(try_query(&argv(&[
            "query", "--decomp", p, "--range", ":,:,:", "--agg", "median",
        ]))
        .is_err());
        assert!(try_query(&argv(&[
            "query",
            "--decomp",
            p,
            "--at",
            "0,0,0",
            "--cache-mb",
            "lots",
        ]))
        .is_err());
        let e = try_query(&argv(&["query", "--decomp", p, "--at", "6,0,0"])).unwrap_err();
        assert!(e.contains("exceeds"), "{e}");
        // Missing artifact surfaces the store error.
        assert!(try_query(&argv(&[
            "query",
            "--decomp",
            "/no/such.dts",
            "--at",
            "0,0,0"
        ]))
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_serves_and_verifies() {
        let (path, full) = artifact("query_ok");
        let p = path.to_str().unwrap();
        // Element, range (+ --out), and aggregates, all under --verify so
        // every answer is checked against the naive oracle.
        try_query(&argv(&[
            "query", "--decomp", p, "--at", "3,2,1", "--verify",
        ]))
        .unwrap();
        let out = std::env::temp_dir().join(format!(
            "dtucker_cli_tests/qbox_{}.dten",
            std::process::id()
        ));
        let o = out.to_str().unwrap();
        try_query(&argv(&[
            "query",
            "--decomp",
            p,
            "--range",
            "0:3,1:5,2",
            "--verify",
            "--profile",
            "--out",
            o,
        ]))
        .unwrap();
        let got = io::load(o).unwrap();
        let want = full.subtensor(&[(0, 3), (1, 5), (2, 3)]).unwrap();
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        for agg in ["sum", "mean", "fro"] {
            try_query(&argv(&[
                "query",
                "--decomp",
                p,
                "--range",
                "1:6,:,0:2",
                "--agg",
                agg,
                "--verify",
            ]))
            .unwrap();
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }
}
