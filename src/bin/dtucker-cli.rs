//! Command-line front door for the dtucker workspace.
//!
//! ```text
//! dtucker-cli generate  --dataset boats --scale ci --seed 0 --out x.dten
//! dtucker-cli info      --input x.dten
//! dtucker-cli decompose --input x.dten --rank 5 [--method dtucker|hooi|hosvd|st-hosvd|mach|rtd]
//!                       [--seed S] [--save-core core.dten]
//! ```

use dtucker::{DTucker, DTuckerConfig};
use dtucker_baselines::{hooi, hosvd, mach, rtd, st_hosvd, HooiConfig, MachConfig, RtdConfig};
use dtucker_data::{generate, parse_scale, Dataset};
use dtucker_tensor::io;
use std::process::ExitCode;
use std::time::Instant;

fn opt(args: &[String], key: &str) -> Option<String> {
    let flag = format!("--{key}");
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!();
    eprintln!("usage:");
    eprintln!(
        "  dtucker-cli generate  --dataset <name> [--scale ci|bench|paper] [--seed S] --out <file>"
    );
    eprintln!("  dtucker-cli info      --input <file>");
    eprintln!("  dtucker-cli decompose --input <file> --rank J [--method NAME] [--seed S] [--save-core <file>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args),
        Some("info") => cmd_info(&args),
        Some("decompose") => cmd_decompose(&args),
        _ => fail("missing or unknown subcommand"),
    }
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let Some(name) = opt(args, "dataset") else {
        return fail("--dataset is required");
    };
    let Some(ds) = Dataset::parse(&name) else {
        return fail("unknown dataset");
    };
    let scale = match parse_scale(&opt(args, "scale").unwrap_or_else(|| "ci".into())) {
        Ok(s) => s,
        Err(e) => return fail(&e.to_string()),
    };
    let seed: u64 = opt(args, "seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let Some(out) = opt(args, "out") else {
        return fail("--out is required");
    };

    let t0 = Instant::now();
    let x = match generate(ds, scale, seed) {
        Ok(x) => x,
        Err(e) => return fail(&e.to_string()),
    };
    if let Err(e) = io::save(&x, &out) {
        return fail(&e.to_string());
    }
    println!(
        "wrote {out}: {:?}, {:.1} MB, generated in {:.2}s",
        x.shape(),
        x.numel() as f64 * 8.0 / 1e6,
        t0.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(input) = opt(args, "input") else {
        return fail("--input is required");
    };
    let x = match io::load(&input) {
        Ok(x) => x,
        Err(e) => return fail(&e.to_string()),
    };
    println!("{input}:");
    println!("  shape   {:?} (order {})", x.shape(), x.order());
    println!(
        "  numel   {} ({:.1} MB)",
        x.numel(),
        x.numel() as f64 * 8.0 / 1e6
    );
    println!("  ‖X‖_F   {:.6}", x.fro_norm());
    println!("  max|x|  {:.6}", x.max_abs());
    println!("  finite  {}", x.is_finite());
    ExitCode::SUCCESS
}

fn cmd_decompose(args: &[String]) -> ExitCode {
    let Some(input) = opt(args, "input") else {
        return fail("--input is required");
    };
    let Some(rank) = opt(args, "rank").and_then(|v| v.parse::<usize>().ok()) else {
        return fail("--rank J is required");
    };
    let method = opt(args, "method").unwrap_or_else(|| "dtucker".into());
    let seed: u64 = opt(args, "seed").and_then(|v| v.parse().ok()).unwrap_or(0);

    let x = match io::load(&input) {
        Ok(x) => x,
        Err(e) => return fail(&e.to_string()),
    };
    let n = x.order();
    let j = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    if j < rank {
        eprintln!("note: rank clamped to {j} (smallest mode)");
    }
    let ranks = vec![j; n];

    let t0 = Instant::now();
    let result = match method.as_str() {
        "dtucker" => DTucker::new(DTuckerConfig::uniform(j, n).with_seed(seed))
            .decompose(&x)
            .map(|o| o.decomposition),
        "hooi" => {
            let mut c = HooiConfig::new(&ranks);
            c.seed = seed;
            hooi(&x, &c).map(|o| o.decomposition)
        }
        "hosvd" => hosvd(&x, &ranks).map(|o| o.decomposition),
        "st-hosvd" => st_hosvd(&x, &ranks).map(|o| o.decomposition),
        "mach" => {
            let mut c = MachConfig::new(&ranks);
            c.seed = seed;
            mach(&x, &c).map(|o| o.decomposition)
        }
        "rtd" => {
            let mut c = RtdConfig::new(&ranks);
            c.seed = seed;
            rtd(&x, &c).map(|o| o.decomposition)
        }
        other => return fail(&format!("unknown method '{other}'")),
    };
    let d = match result {
        Ok(d) => d,
        Err(e) => return fail(&e.to_string()),
    };
    let elapsed = t0.elapsed();
    let err = match d.relative_error_sq(&x) {
        Ok(e) => e,
        Err(e) => return fail(&e.to_string()),
    };
    println!("method      {method}");
    println!("ranks       {:?}", d.ranks());
    println!("time        {:.3}s", elapsed.as_secs_f64());
    println!("rel. error  {err:.6}");
    println!(
        "model size  {:.2} MB ({:.1}x smaller than input)",
        d.memory_bytes() as f64 / 1e6,
        (x.numel() * 8) as f64 / d.memory_bytes() as f64
    );
    if let Some(path) = opt(args, "save-core") {
        if let Err(e) = io::save(&d.core, &path) {
            return fail(&e.to_string());
        }
        println!("core        written to {path}");
    }
    ExitCode::SUCCESS
}
