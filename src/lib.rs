//! # dtucker
//!
//! Facade crate re-exporting the whole D-Tucker workspace — the Rust
//! reproduction of *"D-Tucker: Fast and Memory-Efficient Tucker
//! Decomposition for Dense Tensors"* (Jang & Kang, ICDE 2020).
//!
//! ```
//! use dtucker::{DTucker, DTuckerConfig};
//! use dtucker::data::{generate, Dataset, Scale};
//!
//! let x = generate(Dataset::AirQuality, Scale::Ci, 0).unwrap();
//! let out = DTucker::new(DTuckerConfig::uniform(4, 3)).decompose(&x).unwrap();
//! assert!(out.decomposition.relative_error_sq(&x).unwrap() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Baseline Tucker methods (HOOI, HOSVD, MACH, RTD, Tucker-ts/ttmts).
pub use dtucker_baselines as baselines;
/// The D-Tucker algorithm (approximation/initialization/iteration phases).
pub use dtucker_core as core;
/// Synthetic workload generators standing in for the evaluation datasets.
pub use dtucker_data as data;
/// Dense linear algebra substrate (matrices, GEMM, QR, SVD, eigen, rSVD).
pub use dtucker_linalg as linalg;
/// Factored reconstruction queries against stored decompositions.
pub use dtucker_query as query;
/// Concurrent HTTP query serving over stored artifacts.
pub use dtucker_serve as serve;
/// Sketching substrate (FFT, CountSketch, TensorSketch).
pub use dtucker_sketch as sketch;
/// Out-of-core slice sourcing and persistent artifacts (checkpoint/resume).
pub use dtucker_store as store;
/// Dense/sparse tensors, matricization, n-mode products.
pub use dtucker_tensor as tensor;

pub use dtucker_core::{
    decompose_to_target_error, ConvergenceTrace, DTucker, DTuckerConfig, DTuckerOutput,
    DTuckerStream, InMemorySource, InitStrategy, SliceSource, SliceSvdKind, SlicedTensor,
    SweepState, SyntheticSource, TuckerDecomp,
};
pub use dtucker_linalg::Matrix;
pub use dtucker_query::{QueryEngine, Range, SharedQueryEngine};
pub use dtucker_serve::{ServeConfig, Server};
pub use dtucker_store::{ArtifactStore, DtenSliceSource, HooiCheckpoint};
pub use dtucker_tensor::DenseTensor;
